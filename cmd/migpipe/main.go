// Command migpipe drives the batch-optimization engine: it runs a named
// pass script over the benchmark suite (or one MIG file) on a bounded
// worker pool and reports per-circuit statistics, optionally as JSON.
//
// Usage:
//
//	migpipe -script resyn                     # all eight benchmarks, NumCPU workers
//	migpipe -script size -workers 1 -json     # serial, machine-readable stats
//	migpipe -script resyn -benchmarks Sine,Max -verify sat
//	migpipe -script resyn -verify sim -json       # differential harness, machine-readable
//	migpipe -script resyn -cachefile npn.cache   # warm-start reruns from disk
//	migpipe -script BF -in circuit.bench -split   # one job per output cone
//	migpipe -script resyn -in big.bench -workers 8  # one graph: FFR-parallel rewriting
//	migpipe -script resyn -k 5                # same script, 5-input functional hashing
//	migpipe -script resyn -extract            # choice-aware rewriting + global extraction
//	migpipe -script resyn5 -cachefile npn.cache -synth-budget 2s
//	migpipe -url http://localhost:8080 -script resyn  # optimize remotely over HTTP
//	migpipe -script resyn5 -trace trace.json  # Chrome/Perfetto trace of the run
//	migpipe -scripts                          # list available scripts
//
// With a single job the -workers budget moves from the batch pool to the
// pipeline's intra-graph rewriter (best-cut evaluation over independent
// fanout-free regions); results are bit-identical at any worker count.
//
// -verify selects a rung of the verification ladder (ARCHITECTURE.md,
// "Verification"): "sat" proves every final result equivalent to its
// input with the counterexample-guided SAT ladder; "sim" installs the
// differential harness — every pass of every iteration is re-simulated
// word-parallel against its input graph, refute-only, and the run ends
// with a calibration sweep proving the harness catches ground-truth
// inequivalent mutants; "sim+sat" does both. The -json report carries
// the harness statistics in its "verify" block (the sim-verify CI job
// uploads them as BENCH_sim.json).
//
// With -cachefile the jobs share one NPN cut-cache that is warm-started
// from the snapshot at that path (when it exists) and saved back after
// the run, so reruns skip the canonicalizations of previous processes;
// the optimized graphs are bit-identical warm or cold.
//
// With -k 5 (or a *5 script such as resyn5) functional hashing extends
// to five-leaf cuts: their NPN classes are not precomputed but learned —
// synthesized on first contact by the SAT engine under the budget of
// -synth-conflicts/-synth-budget, memoized by semi-canonical class, and
// persisted through -cachefile alongside the 4-input cut-cache, so a
// warm rerun re-synthesizes nothing. -k 5 maps each preset to its
// 5-input variant (resyn→resyn5, size→size5, TF→TF5, …).
//
// With -trace the whole run is recorded as Chrome trace-event JSON: one
// span per job, pipeline, iteration and pass, down to the rewrite phases
// and the individual exact-synthesis ladders (internal/obs documents the
// taxonomy). Load the file in chrome://tracing or https://ui.perfetto.dev
// to see where a slow run spent its time.
//
// With -url the jobs are not optimized locally: they are serialized to
// BENCH and submitted to a running migserve at that base URL via
// POST /v1/optimize/batch, and the reported statistics are the server's.
// The engine-local -sharedcache/-cachefile/-synth-* flags are ignored
// remotely (with a warning), and the reported worker count is the
// requested value — the server clamps the parallelism it actually
// grants. Transient failures — connection errors, 503s, other 5xx
// responses received before any payload — are retried up to -retries
// times with capped exponential backoff, full jitter, and the server's
// Retry-After hint as a floor; the -json report carries the attempt
// count spent (see the README's "HTTP API" retry contract).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mighash/internal/circuits"
	"mighash/internal/db"
	"mighash/internal/engine"
	"mighash/internal/exp"
	"mighash/internal/mig"
	"mighash/internal/obs"
	"mighash/internal/qor"
	"mighash/internal/server"
	"mighash/internal/sim/diff"
)

// jsonResult is engine.Result with the error stringified for encoding.
type jsonResult struct {
	Name  string               `json:"name"`
	Stats engine.PipelineStats `json:"stats"`
	Err   string               `json:"error,omitempty"`
	// Attempts is how many HTTP attempts the remote exchange carrying
	// this job spent (1 = first try succeeded); jobs travel in one batch
	// request, so every result of a run reports the same count. Zero —
	// and omitted — for local runs, which have no transport to retry.
	Attempts int `json:"attempts,omitempty"`
}

type jsonReport struct {
	Script string `json:"script"`
	// Workers is the batch pool size that actually ran locally; for
	// remote runs it is the requested value verbatim (the server clamps
	// per-request workers to its own limit, so the local pool size would
	// be a lie — 0 means "server default").
	Workers int           `json:"workers"`
	Jobs    int           `json:"jobs"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// CacheHits/CacheMisses aggregate the NPN cut-cache counters over
	// every job; CacheHitRate is their ratio. The CI warm-start smoke
	// compares these across runs of the same -cachefile.
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// The on-demand 5-input store of this run (all zero for K = 4
	// scripts): classes known at exit, exact-synthesis ladders run, and
	// ladders that blew their budget. The exact5-smoke CI job asserts
	// Exact5Synths == 0 on a warm -cachefile rerun.
	Exact5Entries  int `json:"exact5_entries"`
	Exact5Negative int `json:"exact5_negative"`
	Exact5Synths   int `json:"exact5_synths"`
	Exact5Timeouts int `json:"exact5_timeouts"`
	// Choice-aware extraction, aggregated over every job (zero unless
	// the script runs an extraction variant): candidate (cut, candidate)
	// choices recorded, and gates the global covers saved over the
	// greedy twin runs. The extract-smoke CI job uploads these (as
	// BENCH_extract.json) and migtrend renders them.
	ExtractChoices int `json:"extract_choices,omitempty"`
	ExtractSaved   int `json:"extract_saved,omitempty"`
	// Attempts counts the HTTP attempts of a remote run (1 = no retries
	// were needed; omitted locally). The chaos-smoke CI asserts this
	// climbs when the server sheds with 503 + Retry-After.
	Attempts int `json:"attempts,omitempty"`
	// Verify carries the verification-ladder statistics of a local run
	// with -verify; omitted otherwise (remote runs verify server-side).
	Verify  *jsonVerify  `json:"verify,omitempty"`
	Results []jsonResult `json:"results"`
	// Run identifies this invocation in the durable QoR trend store, and
	// Provenance pins the build and machine the numbers came from (git
	// SHA, timestamp, os/arch, GOMAXPROCS). Qor carries one trend-store
	// record per completed job — the lines migtrend -history appends and
	// migtrend -gate compares across runs.
	Run        string         `json:"run"`
	Provenance qor.Provenance `json:"provenance"`
	Qor        []qor.Record   `json:"qor,omitempty"`
}

// jsonVerify is the "verify" block of the -json report: what the
// verification ladder did and how fast. The sim-verify CI job uploads
// this (as BENCH_sim.json) and migtrend renders it in the step summary.
type jsonVerify struct {
	// Mode echoes the -verify flag ("sat", "sim" or "sim+sat").
	Mode string `json:"mode"`
	// PassChecks/Patterns/Failures aggregate the differential harness:
	// graph pairs compared (one per executed pass, plus one final
	// input-vs-result check per job), input patterns swept, and checks
	// that refuted equivalence. Zero under plain -verify sat.
	PassChecks        int64   `json:"pass_checks"`
	Patterns          int64   `json:"patterns"`
	PatternsPerSecond float64 `json:"patterns_per_second"`
	Failures          int64   `json:"failures"`
	// CalibrationRefuted/CalibrationTotal report the self-test: how many
	// ground-truth-inequivalent mutants a dedicated harness refuted. A
	// shortfall means the pattern budget is too small to trust the zeros
	// above.
	CalibrationRefuted int `json:"calibration_refuted"`
	CalibrationTotal   int `json:"calibration_total"`
	// SimElapsed/SATElapsed split the verification wall clock by rung.
	SimElapsed time.Duration `json:"sim_elapsed_ns"`
	SATElapsed time.Duration `json:"sat_elapsed_ns"`
	// SATProofs counts the final results proven equivalent by the SAT
	// rung (modes "sat" and "sim+sat").
	SATProofs int `json:"sat_proofs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("migpipe: ")
	var (
		script     = flag.String("script", "resyn", "pass script to run (see -scripts)")
		listOnly   = flag.Bool("scripts", false, "list available scripts and exit")
		workers    = flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		in         = flag.String("in", "", "optimize one MIG file instead of the benchmark suite")
		split      = flag.Bool("split", false, "with -in: one batch job per output cone")
		prepare    = flag.Bool("prepare", true, "depth-optimize benchmark starting points first (Sec. V-C)")
		shared     = flag.Bool("sharedcache", false, "share one NPN cut-cache across all workers")
		cacheFile  = flag.String("cachefile", "", "warm-start the shared NPN cache from this snapshot and save it back after the run")
		verify     = flag.String("verify", "", `verification ladder rung: "sat" (prove final results), "sim" (differential harness: re-simulate every pass, refute-only), or "sim+sat"`)
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON on stdout")
		timeout    = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
		url        = flag.String("url", "", "optimize remotely: base URL of a running migserve")
		retries    = flag.Int("retries", 4, "with -url: extra attempts after a transient failure (connect error, 503, other 5xx); 0 = fail fast")
		cutWidth   = flag.Int("k", 0, "functional-hashing cut width: 4, or 5 to map the script to its 5-input variant")
		extractOn  = flag.Bool("extract", false, "map the script to its choice-aware variant: record candidate implementations, extract a globally best cover")
		synthConfl = flag.Int64("synth-conflicts", 0, "per-class SAT conflict budget of 5-input exact synthesis (0 = default, <0 = unlimited)")
		synthTime  = flag.Duration("synth-budget", 0, "per-class wall-clock budget of 5-input exact synthesis (0 = none; trades determinism for latency)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	if *listOnly {
		fmt.Println(strings.Join(engine.PresetNames(), "\n"))
		return
	}
	scriptName, err := engine.WidenScript(*script, *cutWidth, *extractOn)
	if err != nil {
		log.Fatal(err)
	}
	simVerify, satVerify, err := verifyModes(*verify)
	if err != nil {
		log.Fatal(err)
	}
	p, err := engine.Preset(scriptName)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := buildJobs(*in, *split, *benchmarks, *prepare)
	if err != nil {
		log.Fatal(err)
	}
	if len(jobs) == 1 {
		// A single job cannot use the batch pool, so hand the workers to
		// the pipeline's intra-graph parallel rewriter instead: best cuts
		// of independent fanout-free regions are evaluated concurrently
		// and committed deterministically, so the result is bit-identical
		// to a serial run.
		if p.Workers = *workers; p.Workers <= 0 {
			p.Workers = runtime.NumCPU()
		}
	}
	var harness *diff.Harness
	if simVerify && *url == "" {
		// The differential harness re-checks every pass of every iteration
		// of every job against its input graph; one harness spans the whole
		// batch so counterexamples sharpen later checks.
		harness = diff.New(diff.Options{})
		p.PassCheck = harness.PassCheck
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tracer *obs.Tracer
	var rootSpan *obs.Span
	if *traceOut != "" {
		if *url != "" {
			log.Printf("warning: -trace records only the local HTTP exchange with -url (server-side spans live in migserve -trace-dir)")
		}
		tracer = obs.New(obs.Options{Retain: true})
		ctx = obs.ContextWithTracer(ctx, tracer)
		ctx, rootSpan = obs.Start(ctx, "migpipe")
		rootSpan.SetStr("script", scriptName)
	}
	exact5 := db.NewOnDemand(db.OnDemandOptions{MaxConflicts: *synthConfl, Timeout: *synthTime})
	opt := engine.BatchOptions{Workers: *workers, CacheFile: *cacheFile, Exact5: exact5}
	if *shared {
		opt.SharedCache = db.NewCache()
	}
	if *url != "" {
		// The engine-local cache flags never reach the server; warn
		// instead of silently dropping them so scripted runs notice.
		if *shared {
			log.Printf("warning: -sharedcache is ignored with -url (the server owns its cache policy)")
		}
		if *cacheFile != "" {
			log.Printf("warning: -cachefile is ignored with -url (persist the cache server-side with migserve -cache-file)")
		}
		if *synthConfl != 0 || *synthTime != 0 {
			log.Printf("warning: -synth-conflicts/-synth-budget are ignored with -url (tune the server with migserve -synth-*)")
		}
	}
	start := time.Now()
	var results []engine.Result
	var attempts int
	if *url != "" {
		results, attempts, err = runRemote(ctx, *url, scriptName, *workers, *verify, *timeout, *retries, jobs)
	} else {
		results, err = engine.RunBatch(ctx, p, jobs, opt)
	}
	elapsed := time.Since(start)
	if tracer != nil {
		rootSpan.End()
		if err := tracer.SaveTrace(*traceOut); err != nil {
			log.Fatalf("writing trace to %s: %v", *traceOut, err)
		}
	}
	failed := false
	if err != nil {
		log.Printf("batch aborted: %v", err)
		failed = true
	}
	for _, r := range results {
		if r.Err != nil {
			failed = true
		}
	}
	var verifyStats *jsonVerify
	if *verify != "" && *url == "" {
		verifyStats = &jsonVerify{Mode: *verify}
		if simVerify {
			// Per-pass checks already chained before→after across the run;
			// the direct input-vs-result check closes the chain over the
			// pipeline's best-graph selection too.
			simStart := time.Now()
			for i, r := range results {
				if r.Err != nil || r.M == nil {
					continue
				}
				if err := harness.Check(jobs[i].M, r.M); err != nil {
					log.Printf("%s: MISCOMPARE: %v", r.Name, err)
					failed = true
				}
			}
			// Self-calibration on a dedicated harness, so its deliberate
			// failures do not pollute the run's counters: the harness must
			// refute ground-truth-inequivalent mutants of every job, or the
			// zero-failure report above is not worth much.
			calib := diff.New(diff.Options{})
			const mutantsPerJob = 4
			for _, j := range jobs {
				n := calib.Calibrate(j.M, mutantsPerJob)
				verifyStats.CalibrationRefuted += n
				verifyStats.CalibrationTotal += mutantsPerJob
				if n < mutantsPerJob {
					log.Printf("%s: calibration refuted only %d/%d ground-truth mutants (raise the pattern budget)",
						j.Name, n, mutantsPerJob)
					failed = true
				}
			}
			st := harness.Stats()
			verifyStats.PassChecks = st.Checks
			verifyStats.Patterns = st.Patterns
			verifyStats.PatternsPerSecond = st.PatternsPerSecond()
			verifyStats.Failures = st.Failures
			verifyStats.SimElapsed = time.Since(simStart)
		}
		if satVerify {
			satStart := time.Now()
			for i, r := range results {
				if r.Err != nil || r.M == nil {
					continue
				}
				eq, ce, err := mig.Equivalent(jobs[i].M, r.M, 0)
				if err != nil {
					log.Fatalf("%s: equivalence check failed to run: %v", r.Name, err)
				}
				if !eq {
					log.Printf("%s: MISCOMPARE, counterexample %v", r.Name, ce)
					failed = true
				} else {
					verifyStats.SATProofs++
				}
			}
			verifyStats.SATElapsed = time.Since(satStart)
		}
	}

	// Remote runs report the requested worker count verbatim: the server
	// clamps per-request workers to its own limit, so the local pool size
	// never ran anywhere and reporting it would be misleading.
	reportedWorkers := effectiveWorkers(*workers, len(jobs))
	if *url != "" {
		reportedWorkers = *workers
	}
	var cacheHits, cacheMisses int
	var extractChoices, extractSaved int
	for _, r := range results {
		cacheHits += r.Stats.CacheHits
		cacheMisses += r.Stats.CacheMisses
		extractChoices += r.Stats.Choices
		extractSaved += r.Stats.ExtractSaved
	}

	if *jsonOut {
		// Every -json artifact doubles as a batch of durable trend-store
		// records: one qor.Record per completed job, all sharing this
		// invocation's run ID and provenance, ready for migtrend -history.
		prov := qor.CollectProvenance()
		runID := qor.NewRunID(prov)
		var qorRecs []qor.Record
		for _, r := range results {
			rec, ok := qor.FromResult(runID, p.Name, r, prov)
			if !ok {
				continue
			}
			rec.Exact5Synths = int(exact5.Synths())
			rec.Exact5Timeouts = int(exact5.Failures())
			qorRecs = append(qorRecs, rec)
		}
		rep := jsonReport{
			Script:         p.Name,
			Workers:        reportedWorkers,
			Jobs:           len(jobs),
			Elapsed:        elapsed,
			CacheHits:      cacheHits,
			CacheMisses:    cacheMisses,
			Exact5Entries:  exact5.Len(),
			Exact5Negative: exact5.NegativeLen(),
			Exact5Synths:   int(exact5.Synths()),
			Exact5Timeouts: int(exact5.Failures()),
			ExtractChoices: extractChoices,
			ExtractSaved:   extractSaved,
			Attempts:       attempts,
			Verify:         verifyStats,
			Run:            runID,
			Provenance:     prov,
			Qor:            qorRecs,
		}
		if total := cacheHits + cacheMisses; total > 0 {
			rep.CacheHitRate = float64(cacheHits) / float64(total)
		}
		for _, r := range results {
			jr := jsonResult{Name: r.Name, Stats: r.Stats, Attempts: attempts}
			if r.Err != nil {
				jr.Err = r.Err.Error()
			}
			rep.Results = append(rep.Results, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("script %s, %d jobs, %d workers, wall %v\n",
			p.Name, len(jobs), reportedWorkers, elapsed.Round(time.Millisecond))
		if attempts > 1 {
			fmt.Printf("remote exchange took %d attempts (server busy; retried with backoff)\n", attempts)
		}
		fmt.Printf("%-16s %8s %8s %6s %6s %5s %9s %10s\n",
			"circuit", "size", "size'", "depth", "depth'", "iters", "cache-hit", "time")
		for _, r := range results {
			if r.Err != nil {
				fmt.Printf("%-16s error: %v\n", r.Name, r.Err)
				continue
			}
			s := r.Stats
			fmt.Printf("%-16s %8d %8d %6d %6d %5d %8.1f%% %10v\n",
				r.Name, s.SizeBefore, s.SizeAfter, s.DepthBefore, s.DepthAfter,
				s.Iterations, 100*s.CacheHitRate(), s.Elapsed.Round(time.Millisecond))
		}
		if total := cacheHits + cacheMisses; total > 0 {
			fmt.Printf("npn cache: %d hits / %d misses (%.1f%%)\n",
				cacheHits, cacheMisses, 100*float64(cacheHits)/float64(total))
		}
		if exact5.Len()+exact5.NegativeLen() > 0 || exact5.Synths() > 0 {
			fmt.Println(exact5)
		}
		if extractChoices > 0 {
			fmt.Printf("extract: %d choices recorded, global covers saved %d gates over greedy\n",
				extractChoices, extractSaved)
		}
		if v := verifyStats; v != nil {
			fmt.Printf("verify (%s):", v.Mode)
			if simVerify {
				fmt.Printf(" %d sim checks, %d patterns (%.0f/s), %d failures, calibration %d/%d in %v;",
					v.PassChecks, v.Patterns, v.PatternsPerSecond,
					v.Failures, v.CalibrationRefuted, v.CalibrationTotal, v.SimElapsed.Round(time.Millisecond))
			}
			if satVerify {
				fmt.Printf(" %d SAT proofs in %v", v.SATProofs, v.SATElapsed.Round(time.Millisecond))
			}
			fmt.Println()
		}
	}
	if failed {
		os.Exit(1)
	}
}

// buildJobs assembles the batch: the arithmetic benchmark suite, or one
// input file (optionally split into output cones).
func buildJobs(in string, split bool, benchmarks string, prepare bool) ([]engine.Job, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var m *mig.MIG
		if strings.HasSuffix(in, ".bench") {
			m, err = mig.ReadBENCH(f)
		} else {
			m, err = mig.ReadText(f)
		}
		if err != nil {
			return nil, err
		}
		if split {
			return engine.SplitOutputs(m, strings.TrimSuffix(in, ".bench")), nil
		}
		return []engine.Job{{Name: in, M: m}}, nil
	}
	specs := circuits.All()
	if benchmarks != "" {
		names := strings.Split(benchmarks, ",")
		specs = specs[:0]
		for _, n := range names {
			s, ok := circuits.ByName(strings.TrimSpace(n))
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", n)
			}
			specs = append(specs, s)
		}
	}
	// Building and depth-preparing the large circuits is itself costly,
	// so it runs on its own worker pool rather than serializing in front
	// of the batch.
	jobs := make([]engine.Job, len(specs))
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(specs) {
					return
				}
				spec := specs[i]
				var m *mig.MIG
				if prepare {
					m = exp.PrepareStart(spec)
				} else {
					m = spec.Build()
				}
				jobs[i] = engine.Job{Name: spec.Name, M: m}
			}
		}()
	}
	wg.Wait()
	return jobs, nil
}

// runRemote submits the jobs to a running migserve as one batch request
// and maps the server's results back onto the local reporting shape. The
// server performs the requested verification itself, so the local SAT
// check is skipped (remote results carry no graph). ctx carries the
// -timeout budget, bounding the HTTP exchange as well as the server-side
// work (which additionally receives the budget as timeout_ms).
//
// Transient failures — connection errors, 503s (which carry the server's
// Retry-After backlog hint), other 5xx responses — are retried up to
// retries extra times with capped exponential backoff and full jitter
// (see retryPolicy); the attempt count spent is reported back for the
// -json attempts fields.
func runRemote(ctx context.Context, baseURL, script string, workers int, verify string, timeout time.Duration, retries int, jobs []engine.Job) ([]engine.Result, int, error) {
	req := server.BatchRequest{
		ScriptSpec: server.ScriptSpec{Script: script, Workers: workers},
		Verify:     verify != "",
		VerifyMode: verify,
	}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	for _, j := range jobs {
		var b strings.Builder
		if err := j.M.WriteBENCH(&b); err != nil {
			return nil, 0, err
		}
		req.Jobs = append(req.Jobs, server.BatchJobRequest{Name: j.Name, Netlist: b.String()})
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	policy := retryPolicy{MaxRetries: retries, Base: 200 * time.Millisecond, Cap: 10 * time.Second}
	resp, attempts, err := policy.post(ctx, http.DefaultClient,
		strings.TrimSuffix(baseURL, "/")+"/v1/optimize/batch", "application/json", raw)
	if err != nil {
		return nil, attempts, fmt.Errorf("after %d attempt(s): %w", attempts, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, attempts, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, attempts, fmt.Errorf("server: %s (HTTP %d, %d attempts)", e.Error, resp.StatusCode, attempts)
		}
		return nil, attempts, fmt.Errorf("server returned HTTP %d (%d attempts)", resp.StatusCode, attempts)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		return nil, attempts, fmt.Errorf("decoding server response: %v", err)
	}
	results := make([]engine.Result, len(br.Results))
	for i, r := range br.Results {
		results[i] = engine.Result{Name: r.Name, Stats: r.Stats}
		if r.Error != "" {
			results[i].Err = errors.New(r.Error)
		}
	}
	return results, attempts, nil
}

// verifyModes parses the -verify flag into its two ladder rungs.
func verifyModes(mode string) (simV, satV bool, err error) {
	switch mode {
	case "":
	case "sat":
		satV = true
	case "sim":
		simV = true
	case "sim+sat", "sat+sim":
		simV, satV = true, true
	default:
		err = fmt.Errorf(`-verify wants "sat", "sim" or "sim+sat", got %q`, mode)
	}
	return simV, satV, err
}

func effectiveWorkers(requested, jobs int) int {
	if requested <= 0 {
		requested = runtime.NumCPU()
	}
	if requested > jobs {
		return jobs
	}
	return requested
}
