package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mighash/internal/engine"
	"mighash/internal/mig"
	"mighash/internal/server"
)

// fastPolicy keeps test backoffs in the single-millisecond range.
var fastPolicy = retryPolicy{MaxRetries: 4, Base: time.Millisecond, Cap: 4 * time.Millisecond}

// TestPostRetriesUntilSuccess: two 503s (with Retry-After, as migserve
// always sends) and then a 200 cost exactly three attempts, and the
// final body is the success payload.
func TestPostRetriesUntilSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	resp, attempts, err := fastPolicy.post(context.Background(), ts.Client(), ts.URL, "text/plain", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s + success)", attempts)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok" {
		t.Fatalf("final body = %q, want %q", body, "ok")
	}
}

// TestPostReturnsLastResponseWhenExhausted: a persistently unavailable
// server costs MaxRetries+1 attempts and hands back the last 503 so the
// caller can surface the server's own error body.
func TestPostReturnsLastResponseWhenExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	p := retryPolicy{MaxRetries: 2, Base: time.Millisecond, Cap: time.Millisecond}
	resp, attempts, err := p.post(context.Background(), ts.Client(), ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if attempts != 3 || hits.Load() != 3 {
		t.Fatalf("attempts = %d, server hits = %d, want 3 and 3", attempts, hits.Load())
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries returned %d, want the last 503", resp.StatusCode)
	}
}

// TestPostNeverRetriesClientErrors: a 4xx is the request's own fault —
// replaying it is pure waste, so one attempt is all it gets.
func TestPostNeverRetriesClientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad netlist", http.StatusBadRequest)
	}))
	defer ts.Close()

	resp, attempts, err := fastPolicy.post(context.Background(), ts.Client(), ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if attempts != 1 || hits.Load() != 1 {
		t.Fatalf("attempts = %d, server hits = %d, want 1 and 1", attempts, hits.Load())
	}
}

// TestPostRetriesConnectErrors: a server that is not there at all is the
// canonical idempotent failure — the request never reached a handler.
func TestPostRetriesConnectErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // the port is now refusing connections

	p := retryPolicy{MaxRetries: 2, Base: time.Millisecond, Cap: time.Millisecond}
	_, attempts, err := p.post(context.Background(), http.DefaultClient, url, "text/plain", nil)
	if err == nil {
		t.Fatal("post to a closed port succeeded")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", attempts)
	}
}

// TestPostStopsOnContextCancel: cancellation mid-backoff wins over the
// remaining retry budget.
func TestPostStopsOnContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	p := retryPolicy{MaxRetries: 100, Base: 10 * time.Second, Cap: 10 * time.Second}
	start := time.Now()
	_, _, err := p.post(ctx, ts.Client(), ts.URL, "text/plain", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the backoff sleep ignored the context", elapsed)
	}
}

// TestBackoffShape: the sleep stays inside the exponential envelope,
// caps out, and never undercuts the server's Retry-After floor.
func TestBackoffShape(t *testing.T) {
	p := retryPolicy{MaxRetries: 4, Base: 100 * time.Millisecond, Cap: 400 * time.Millisecond}
	for attempt := 0; attempt < 6; attempt++ {
		bound := p.Base << attempt
		if bound > p.Cap {
			bound = p.Cap
		}
		for i := 0; i < 50; i++ {
			if d := p.backoff(attempt, 0); d < 0 || d > bound {
				t.Fatalf("backoff(%d) = %v, want within [0, %v]", attempt, d, bound)
			}
		}
	}
	if d := p.backoff(0, 5*time.Second); d < 5*time.Second {
		t.Fatalf("backoff with a 5s Retry-After floor slept only %v", d)
	}
	if got := parseRetryAfter("7"); got != 7*time.Second {
		t.Fatalf("parseRetryAfter(7) = %v", got)
	}
	for _, bad := range []string{"", "nope", "-3", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if got := parseRetryAfter(bad); got != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", bad, got)
		}
	}
}

// TestRunRemoteReportsAttempts: the full remote path — one shed 503 with
// Retry-After, then a real batch response — reports attempts = 2 and
// still maps the server's results.
func TestRunRemoteReportsAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"server overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		var req server.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding forwarded batch request: %v", err)
		}
		br := server.BatchResponse{Script: req.Script}
		for _, j := range req.Jobs {
			br.Results = append(br.Results, server.OptimizeResponse{Name: j.Name})
		}
		json.NewEncoder(w).Encode(br)
	}))
	defer ts.Close()

	m, err := mig.ReadBENCH(strings.NewReader("INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = AND(a, b)\n"))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []engine.Job{{Name: "tiny", M: m}}
	results, attempts, err := runRemote(context.Background(), ts.URL, "resyn", 0, "", 0, 4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one shed 503 + success)", attempts)
	}
	if len(results) != 1 || results[0].Name != "tiny" {
		t.Fatalf("results = %+v, want the one job back", results)
	}
}
