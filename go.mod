module mighash

go 1.24
