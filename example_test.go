package mighash_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"

	"mighash"
)

// ExampleNewTT shows truth-table construction and the majority operator
// the whole system is built on.
func ExampleNewTT() {
	a := mighash.VarTT(3, 0)
	b := mighash.VarTT(3, 1)
	c := mighash.VarTT(3, 2)
	maj := a.And(b).Or(b.And(c)).Or(a.And(c))
	fmt.Println(maj)
	// Output: 0xe8
}

// ExampleCanonizeNPN canonicalizes a function to its NPN class
// representative — the key of the functional-hashing database.
func ExampleCanonizeNPN() {
	f := mighash.NewTT(4, 0x8000) // 4-input AND
	rep, _ := mighash.CanonizeNPN(f)
	fmt.Println(rep)
	// Output: 0x0001
}

// ExampleExactMinimum synthesizes a provably minimum MIG with the
// paper's SAT-encoded ladder search.
func ExampleExactMinimum() {
	and2 := mighash.NewTT(2, 0b1000)
	m, err := mighash.ExactMinimum(context.Background(), and2, mighash.ExactOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Stats())
	// Output: i/o=2/1 size=1 depth=1
}

// ExampleLoadDatabase looks up the precomputed minimum MIG of a cut
// function — one functional-hashing step by hand.
func ExampleLoadDatabase() {
	d, err := mighash.LoadDatabase()
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Len(), "NPN classes")
	// Output: 222 NPN classes
}

// ExampleOptimize runs one functional-hashing pass (the bottom-up BF
// variant): a majority function spelled out with five AND/OR gates
// collapses to the single gate its NPN class stores in the database.
func ExampleOptimize() {
	m := mighash.NewMIG(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	m.AddOutput(m.Or(m.Or(m.And(a, b), m.And(b, c)), m.And(a, c)))

	d, _ := mighash.LoadDatabase()
	_, st := mighash.Optimize(m, d, mighash.VariantBF)
	fmt.Printf("size %d -> %d\n", st.SizeBefore, st.SizeAfter)
	// Output: size 5 -> 1
}

// ExamplePipelineScript runs a preset script to convergence.
func ExamplePipelineScript() {
	m := mighash.NewMIG(3)
	a, b, c := m.Input(0), m.Input(1), m.Input(2)
	m.AddOutput(m.Or(m.Or(m.And(a, b), m.And(b, c)), m.And(a, c)))

	p, _ := mighash.PipelineScript("size")
	_, st, err := p.Run(m)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: size %d -> %d, converged %v\n",
		st.Script, st.SizeBefore, st.SizeAfter, st.Converged)
	// Output: size: size 5 -> 1, converged true
}

// ExampleRunBatch optimizes several jobs concurrently; results come back
// in job order regardless of scheduling.
func ExampleRunBatch() {
	b := mighash.NewCircuitBuilder(8)
	sum, cout := b.Add(b.Inputs(0, 4), b.Inputs(4, 4), mighash.Const0)
	b.Outputs(sum)
	b.M.AddOutput(cout)

	p, _ := mighash.PipelineScript("quick")
	jobs := mighash.SplitOutputs(b.M, "adder")
	results, err := mighash.RunBatch(context.Background(), p, jobs,
		mighash.BatchOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	for _, r := range results[:2] {
		fmt.Println(r.Name)
	}
	// Output:
	// adder.out0
	// adder.out1
}

// ExampleReadBENCH parses a BENCH netlist — the interchange format of
// the HTTP optimization service — into an MIG.
func ExampleReadBENCH() {
	src := `
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(s)
OUTPUT(c)
c = MAJ(a, b, cin)
s = XOR(a, b, cin)
`
	m, err := mighash.ReadBENCH(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Stats())
	// Output: i/o=3/2 size=7 depth=4
}

// ExampleNewOptimizeServer embeds the HTTP optimization service and
// optimizes a netlist over the wire.
func ExampleNewOptimizeServer() {
	srv, err := mighash.NewOptimizeServer(mighash.ServerConfig{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{
			"name": "fa",
			"netlist": "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(c)\nc = MAJ(a,b,cin)\ns = XOR(a,b,cin)\n",
			"script": "quick",
			"verify": true
		}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	fmt.Println(resp.Status)
	// Output: 200 OK
}
