package mighash_test

// The root package is the stable public surface, and its contract is
// that every exported identifier carries a doc comment (CI runs this
// check). The test parses the package source directly so the rule is
// enforced without external lint tooling.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRootDocCompleteness fails for every exported top-level identifier
// of the root package that lacks a doc comment. Grouped declarations
// count as documented when either the group or the individual spec has
// one.
func TestRootDocCompleteness(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["mighash"]
	if !ok {
		t.Fatalf("package mighash not found (have %v)", pkgs)
	}
	undocumented := func(name *ast.Ident, doc ...*ast.CommentGroup) bool {
		if !name.IsExported() {
			return false
		}
		for _, d := range doc {
			if d != nil && strings.TrimSpace(d.Text()) != "" {
				return false
			}
		}
		return true
	}
	report := func(name *ast.Ident) {
		t.Errorf("%s: exported identifier %s has no doc comment",
			fset.Position(name.Pos()), name.Name)
	}
	for fname, file := range pkg.Files {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && undocumented(d.Name, d.Doc) {
					report(d.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if undocumented(sp.Name, sp.Doc, sp.Comment, d.Doc) {
							report(sp.Name)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if undocumented(n, sp.Doc, sp.Comment, d.Doc) {
								report(n)
							}
						}
					}
				}
			}
		}
	}
}
